// Sidechannel: the second Section 6 security use-case. The DRAMA-style
// attack observes row-buffer hit/miss timing differences to learn when a
// victim accesses data co-located in the attacker's bank: an attacker
// probe is fast (row hit) when the victim did not disturb the row, and
// slow (row conflict: PRECHARGE + ACTIVATE) when it did. The timing gap
// leaks each victim access.
//
// FIGCache breaks the channel by caching the frequently-probed segments:
// once both the attacker's and the victim's hot segments live in in-DRAM
// cache rows, the attacker's probe latency no longer tracks the victim's
// source-row activity, so the hit/miss signal degrades.
//
// This example measures the probe-latency distributions with the victim
// idle and active, on conventional DRAM and with FIGCache, and reports
// the distinguishability gap the attacker relies on.
//
// Run with: go run ./examples/sidechannel
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ev"
	"repro/internal/memctrl"
)

const (
	attackerRow = 7000 // attacker's probe data
	victimRow   = 7001 // victim data in the same bank
)

// probes keeps the demo re-scalable: the CI smoke test runs it at a tiny
// probe count so the example keeps executing, not just compiling.
var probes = flag.Int("probes", 400, "attacker probe count")

func main() {
	flag.Parse()
	fmt.Println("--- DRAMA-style row-buffer side channel (Section 6) ---")
	idleBase := probeLatency(false, false)
	activeBase := probeLatency(true, false)
	fmt.Printf("conventional DRAM: probe latency %5.1f ns (victim idle) vs %5.1f ns (victim active)\n",
		idleBase, activeBase)
	gapBase := activeBase - idleBase

	idleFig := probeLatency(false, true)
	activeFig := probeLatency(true, true)
	fmt.Printf("with FIGCache:     probe latency %5.1f ns (victim idle) vs %5.1f ns (victim active)\n",
		idleFig, activeFig)
	gapFig := activeFig - idleFig

	fmt.Printf("\nattacker's timing signal (active - idle): %.1f ns -> %.1f ns\n", gapBase, gapFig)
	if gapBase > 0 {
		fmt.Printf("signal reduction: %.0f%%\n", (1-gapFig/gapBase)*100)
	}
	fmt.Println("FIGCache serves the attacker's probes from an in-DRAM cache row, so the")
	fmt.Println("victim's activity on the source rows no longer perturbs the probe timing.")
}

// probeLatency replays an attacker probe loop, optionally interleaved
// with victim accesses to a conflicting row, and returns the mean probe
// read latency in nanoseconds.
func probeLatency(victimActive, withFIGCache bool) float64 {
	geo := dram.Default()
	geo.FastSubarrays = 2
	slow := dram.DDR4()
	channel, err := dram.NewChannel(geo, slow, slow.Fast(dram.PaperFastScale()), false)
	if err != nil {
		log.Fatal(err)
	}
	var hook memctrl.CacheHook
	if withFIGCache {
		fc, err := core.NewFIGCache(core.DefaultFIGCacheConfig(), geo)
		if err != nil {
			log.Fatal(err)
		}
		hook = fc
	}
	ctrl := memctrl.NewController(0, memctrl.DefaultConfig(), channel, hook)

	// The only tokens the controller schedules here are request
	// completions, so the replay loop just counts fired tokens.
	var pending []int64
	step := 0
	issued, completed := 0, 0
	total := *probes
	if victimActive {
		total = *probes * 2
	}
	for now := int64(0); completed < total && now < int64(total)*600; now++ {
		for i := 0; i < len(pending); {
			if pending[i] <= now {
				completed++
				pending = append(pending[:i], pending[i+1:]...)
			} else {
				i++
			}
		}
		if issued == completed && issued < total && ctrl.CanAccept(false) {
			row := attackerRow
			if victimActive && step%2 == 1 {
				row = victimRow // victim access between attacker probes
			}
			step++
			ctrl.Enqueue(&memctrl.Request{
				Loc:        dram.Location{Row: row, Block: (step / 2) % 16},
				OnComplete: ev.Token{Kind: ev.CoreSlot, Arg: uint64(step)},
			}, now)
			issued++
		}
		ctrl.Tick(now, func(at int64, tok ev.Token) {
			pending = append(pending, at)
		})
	}
	// Per-probe latency from the controller's read-latency accounting.
	return ctrl.AvgReadLatencyNS()
}
