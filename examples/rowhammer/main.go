// Rowhammer: the Section 6 security use-case. RowHammer induces bit
// flips by repeatedly opening and closing DRAM rows in the same bank;
// every ACTIVATE of an aggressor row disturbs its physical neighbours.
// FIGCache mitigates the access pattern's effect on victim rows: the
// frequently-accessed segments of the aggressor rows are relocated into a
// shared in-DRAM cache row, so the repeated accesses stop re-activating
// the aggressor rows (and hammering their neighbours) and instead hit a
// single cache row.
//
// This example drives the DRAM timing model with a classic double-sided
// hammering pattern and counts per-row activations with and without
// FIGCache — the quantity RowHammer vulnerability scales with.
//
// Run with: go run ./examples/rowhammer
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ev"
	"repro/internal/memctrl"
)

const (
	aggressorA = 5000 // two aggressor rows sandwiching the victim
	aggressorB = 5002
	victim     = 5001
)

// rounds keeps the demo re-scalable: the CI smoke test runs it at a tiny
// hammer count so the example keeps executing, not just compiling.
var rounds = flag.Int("rounds", 2000, "double-sided hammer rounds")

func main() {
	flag.Parse()
	fmt.Println("--- double-sided RowHammer pattern: A, B, A, B, ... ---")
	baseActs := hammer(nil)
	fmt.Printf("conventional DRAM: aggressor activations A=%d B=%d (victim neighbours disturbed %d times)\n",
		baseActs[aggressorA], baseActs[aggressorB], baseActs[aggressorA]+baseActs[aggressorB])

	geo := dram.Default()
	geo.FastSubarrays = 2
	cache, err := core.NewFIGCache(core.DefaultFIGCacheConfig(), geo)
	if err != nil {
		log.Fatal(err)
	}
	figActs := hammer(cache)
	fmt.Printf("with FIGCache:     aggressor activations A=%d B=%d (disturbances %d)\n",
		figActs[aggressorA], figActs[aggressorB], figActs[aggressorA]+figActs[aggressorB])

	reduction := 1 - float64(figActs[aggressorA]+figActs[aggressorB])/
		float64(baseActs[aggressorA]+baseActs[aggressorB])
	fmt.Printf("\naggressor-row activation reduction: %.1f%%\n", reduction*100)
	fmt.Println("FIGCache redirects the hammering accesses to an in-DRAM cache row after")
	fmt.Println("the first miss to each aggressor segment, so the aggressor wordlines —")
	fmt.Println("and the victim between them — stop being hammered (Section 6).")
}

// hammer replays the alternating aggressor pattern through a memory
// controller and returns per-row ACTIVATE counts for the aggressors'
// regular-row space.
func hammer(cache memctrl.CacheHook) map[int]int64 {
	geo := dram.Default()
	geo.FastSubarrays = 2
	slow := dram.DDR4()
	channel, err := dram.NewChannel(geo, slow, slow.Fast(dram.PaperFastScale()), false)
	if err != nil {
		log.Fatal(err)
	}
	channel.TraceOn = true
	ctrl := memctrl.NewController(0, memctrl.DefaultConfig(), channel, cache)

	// The only tokens the controller schedules here are request
	// completions, so the replay loop just counts fired tokens.
	var pending []int64
	completed := 0
	issued := 0
	nextRow := aggressorA
	for now := int64(0); completed < 2**rounds && now < int64(*rounds)*500; now++ {
		for i := 0; i < len(pending); {
			if pending[i] <= now {
				completed++
				pending = append(pending[:i], pending[i+1:]...)
			} else {
				i++
			}
		}
		// The attacker alternates rows and waits for each access to finish
		// (maximizing activations, as a real RowHammer loop does).
		if issued == completed && issued < 2**rounds && ctrl.CanAccept(false) {
			row := nextRow
			if nextRow == aggressorA {
				nextRow = aggressorB
			} else {
				nextRow = aggressorA
			}
			ctrl.Enqueue(&memctrl.Request{
				Loc:        dram.Location{Row: row, Block: (issued / 2) % 16},
				OnComplete: ev.Token{Kind: ev.CoreSlot, Arg: uint64(issued)},
			}, now)
			issued++
		}
		ctrl.Tick(now, func(at int64, tok ev.Token) {
			pending = append(pending, at)
		})
	}

	acts := make(map[int]int64)
	for _, tr := range channel.Trace {
		if tr.Cmd.Type == dram.CmdACT && !tr.Cmd.Loc.CacheRow {
			acts[tr.Cmd.Loc.Row]++
		}
	}
	return acts
}
