// Multicore: reproduce the paper's central multiprogrammed result on one
// eight-core mix — the setting its introduction motivates, where
// interference between applications destroys row-buffer locality and
// FIGCache restores it by packing the hot row segments of all eight
// programs into a few cache rows per bank.
//
// Run with: go run ./examples/multicore
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/internal/workload"
)

// insts keeps the demo re-scalable: the CI smoke test runs it at a tiny
// instruction budget so the example keeps executing, not just compiling.
var insts = flag.Int64("insts", 1_500_000, "per-core instruction budget")

func main() {
	flag.Parse()
	// Pick a 100%-intensive mix: the regime with the heaviest bank
	// conflicts (Figure 8's rightmost category).
	var mix workload.Mix
	for _, m := range workload.EightCoreMixes() {
		if m.IntensivePercent == 100 {
			mix = m
			break
		}
	}
	fmt.Printf("mix %s:", mix.Name)
	for _, a := range mix.Apps {
		fmt.Printf(" %s", a.Name())
	}
	fmt.Println()

	run := func(p sim.Preset) sim.Result {
		cfg := sim.DefaultConfig(p, mix)
		// The default budget gives the hot sweeps time to revisit their
		// segments: the in-DRAM cache pays insertion cost up front and
		// earns it back on reuse, so short runs understate its benefit.
		cfg.TargetInsts = *insts
		system, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := system.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(sim.Base)
	fmt.Printf("\n%-14s per-core IPC:", sim.Base)
	for _, c := range base.Cores {
		fmt.Printf(" %.3f", c.IPC)
	}
	fmt.Printf("\n  row-buffer hit rate %.1f%%, avg read latency %.1f ns\n",
		base.RowBufferHitRate()*100, base.AvgReadLatencyNS)

	for _, p := range []sim.Preset{sim.LISAVilla, sim.FIGCacheSlow, sim.FIGCacheFast} {
		res := run(p)
		ws := res.WeightedSpeedupOver(base)
		fmt.Printf("\n%-14s weighted speedup over Base: %+.1f%%\n", p, (ws-1)*100)
		fmt.Printf("  row-buffer hit rate %.1f%%, in-DRAM cache hit rate %.1f%%, avg read latency %.1f ns\n",
			res.RowBufferHitRate()*100, res.InDRAMCacheHitRate()*100, res.AvgReadLatencyNS)
		fmt.Printf("  %d segment insertions, %d RELOC columns, %d RBM hops\n",
			res.Inserted, res.DRAM.RELOC, res.DRAM.RBMHops)
	}
	fmt.Println("\npaper reference (Figure 8, 100% intensive): FIGCache-Fast +27.1%, FIGCache-Slow +20.6% over Base")
}
