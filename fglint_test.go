package repro_bench

import (
	"testing"

	"repro/internal/lint"
)

// TestFglintSelfClean runs the full fglint analyzer suite over the
// module programmatically and requires zero diagnostics: the tree must
// stay clean, and any new determinism or Reset-completeness violation
// fails `go test ./...` even where CI is not running the fglint step.
// (The annotation escapes — //fglint:deterministic, //fglint:preserved —
// are part of the contract; see ARCHITECTURE.md.)
func TestFglintSelfClean(t *testing.T) {
	diags, err := lint.CheckModule(".", nil, "...")
	if err != nil {
		t.Fatalf("fglint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d finding(s); fix, or annotate with a reason if provably harmless", len(diags))
	}
}
