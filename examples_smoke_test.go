package repro_bench

import (
	"context"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesSmoke builds every examples/* binary and executes it at a
// tiny scale, so the examples cannot silently rot: before this test they
// were compiled by `go build ./...` but never run, and a behavioural
// break (panic, log.Fatal, hung loop) would ship unnoticed.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example execution in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}

	binDir := t.TempDir()
	build := exec.Command(goBin, "build", "-o", binDir, "./examples/...")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building examples: %v\n%s", err, out)
	}

	// Tiny-scale arguments per example; examples without a scale knob
	// are fast enough to run at their defaults.
	args := map[string][]string{
		"quickstart":  {"-insts", "3000"},
		"multicore":   {"-insts", "1500"},
		"rowhammer":   {"-rounds", "50"},
		"sidechannel": {"-probes", "40"},
		"hotspot":     nil,
	}

	for name, a := range args {
		name, a := name, a
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, filepath.Join(binDir, name), a...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s %v failed: %v\n%s", name, a, err, out)
			}
			if len(strings.TrimSpace(string(out))) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
